//! LPS — laplace3D (GPGPU-Sim benchmark suite).
//!
//! The paper's running example (Fig. 6a): a (32,4) 2-D CTA sweeps the
//! z-dimension in a 99-iteration loop. Addresses decompose as
//! `θ = C1 + C2·C3` from `blockIdx.x·BLOCK_X` and `blockIdx.y·BLOCK_Y·pitch`,
//! plus `threadIdx` terms — warp stride Δ is one grid row and the loop
//! marches one z-plane per iteration. The plane loaded as "z" in
//! iteration *i* is re-read as "z−1" in iteration *i+1*, giving the
//! L1/L2 temporal reuse of the real kernel. Two of the four static loads
//! sit in the loop.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{surface_at, surface_loop_at};
use crate::suite::WorkloadInfo;
use crate::Scale;

/// Grid rows are 16 CTAs × 32 lanes × 4 B wide.
const ROW: i64 = 16 * 32 * 4;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "LPS",
        name: "laplace3D",
        suite: "GPGPU-Sim",
        irregular: false,
        looped_loads: 2,
        total_loads: 4,
        top4_iters: [99.0, 99.0, 1.0, 1.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let side = match scale {
        Scale::Full => 16,
        Scale::Small => 4,
    };
    let iters = scale.iters(99);
    // θ(cta) = cta.x·128 + cta.y·(4 rows): Fig. 6a's exact shape.
    let x_pitch = 32 * 4;
    let y_pitch = ROW * 4;
    let prog = ProgramBuilder::new()
        .ld(surface_at(0, 0, x_pitch, y_pitch, ROW)) // u1 boundary plane
        .ld(surface_at(2, 0, x_pitch, y_pitch, ROW)) // boundary conditions
        .wait()
        .alu(12)
        .begin_loop(iters)
        // u1 row band z (fresh) and band z−1 (read as band z last
        // iteration — L1/L2 temporal reuse). Vertically adjacent CTAs
        // sweep overlapping rows, so the volume is L2-resident.
        .ld(surface_loop_at(0, ROW, x_pitch, y_pitch, ROW, ROW))
        .ld(surface_loop_at(0, 0, x_pitch, y_pitch, ROW, ROW))
        .wait()
        .alu(30) // 7-point stencil arithmetic
        .st(surface_loop_at(3, 0, x_pitch, y_pitch, ROW, ROW)) // u2 out
        .end_loop()
        .build();
    Kernel::new("LPS", (side, side), 128, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::isa::Op;
    use caps_gpu_sim::types::CtaCoord;

    #[test]
    fn fig4_shape() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 4);
        assert_eq!(loads.iter().filter(|(_, _, looped)| *looped).count(), 2);
        assert!(loads.iter().any(|&(_, it, _)| it == 99));
    }

    #[test]
    fn plane_reuse_across_iterations() {
        // Load at (iter i, offset 0) == load at (iter i−1, offset PLANE).
        let k = kernel(Scale::Full);
        let Op::Ld { pattern: fresh, .. } = k.program.op(5) else {
            panic!()
        };
        let Op::Ld {
            pattern: reused, ..
        } = k.program.op(6)
        else {
            panic!()
        };
        let cta = CtaCoord::from_linear(37, 16);
        assert_eq!(fresh.addr(cta, 2, 7, 3), reused.addr(cta, 2, 7, 4));
    }

    #[test]
    fn paper_example_distances_are_irregular() {
        // §IV: CTA base distances in launch order are not constant
        // (the real LPS shows 5184 vs 6272; we reproduce the shape).
        let k = kernel(Scale::Full);
        let Op::Ld { pattern, .. } = k.program.op(0) else {
            panic!()
        };
        let at = |x: u32, y: u32| {
            pattern.addr(
                CtaCoord {
                    x,
                    y,
                    linear: y * 16 + x,
                },
                0,
                0,
                0,
            ) as i64
        };
        let d1 = at(3, 3) - at(0, 0);
        let d2 = at(7, 2) - at(3, 3);
        assert_ne!(d1, d2);
    }

    #[test]
    fn warp_stride_is_cta_invariant() {
        let k = kernel(Scale::Full);
        let Op::Ld { pattern, .. } = k.program.op(0) else {
            panic!()
        };
        for l in [0u32, 5, 17, 100] {
            let c = CtaCoord::from_linear(l, 16);
            assert_eq!(
                pattern.addr(c, 2, 0, 0) - pattern.addr(c, 1, 0, 0),
                ROW as u64
            );
        }
    }
}
