//! CP — Coulombic Potential (CUDA SDK / VMD lineage).
//!
//! Each thread evaluates the potential at one grid point against a block
//! of atoms. The atom array is read by *every* CTA (identical addresses),
//! so it is L2-hot after the first wave; the grid-point read streams.
//! Compute-dominated — the long ALU chain hides most memory latency, so
//! prefetching gains are small (paper: ~2%).

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{linear, linear_at};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "CP",
        name: "Coulombic Potential",
        suite: "CUDA SDK",
        irregular: false,
        looped_loads: 0,
        total_loads: 2,
        top4_iters: [1.0, 1.0, 0.0, 0.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(384);
    let cta_pitch = 4 * 128; // 4 warps × one line of grid points
    let prog = ProgramBuilder::new()
        .ld(linear(0, cta_pitch, 128)) // grid point coordinates (stream)
        .ld(linear_at(1, 0, 0, 128)) // atom tile — shared by all CTAs
        .wait()
        .alu(80) // distance + potential accumulation chain
        .alu(80)
        .st(linear(2, cta_pitch, 128)) // potential out
        .build();
    Kernel::new("CP", (ctas, 1), 128, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::isa::Op;
    use caps_gpu_sim::types::CtaCoord;

    #[test]
    fn geometry_and_loads() {
        let k = kernel(Scale::Full);
        assert_eq!(k.num_ctas(), 384);
        assert_eq!(k.warps_per_cta(32), 4);
        assert_eq!(k.program.static_loads().len(), info().total_loads as usize);
    }

    #[test]
    fn atom_tile_is_shared_across_ctas() {
        let k = kernel(Scale::Full);
        let Op::Ld { pattern, .. } = k.program.op(1) else {
            panic!()
        };
        let a = pattern.addr(CtaCoord::from_linear(0, 192), 1, 5, 0);
        let b = pattern.addr(CtaCoord::from_linear(117, 192), 1, 5, 0);
        assert_eq!(a, b, "every CTA reads the same atom tile");
    }
}
